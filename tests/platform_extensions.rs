//! Integration tests for the post-green extensions: fuzzing campaigns,
//! triage queues, stacked ensembles, and cost-optimal operating points
//! working together over generated corpora.

use vulnman::analysis::fuzz::FuzzCampaign;
use vulnman::analysis::severity::score;
use vulnman::core::customize::{PolicySeverity, SecurityStandard};
use vulnman::core::triage::{sla_compliance, SlaPolicy, TriageQueue};
use vulnman::ml::ensemble::StackedEnsemble;
use vulnman::ml::operating_point::{optimal_threshold, CellValues};
use vulnman::prelude::*;

#[test]
fn fuzz_campaign_matches_ground_truth_on_dynamic_classes() {
    let ds = DatasetBuilder::new(61).vulnerable_count(16).vulnerable_fraction(0.5).build();
    let campaign = FuzzCampaign::standard();
    for s in ds.iter() {
        let Some(cwe) = s.cwe else { continue };
        if !vulnman::analysis::dynamic::dynamically_detectable(cwe) {
            continue;
        }
        let program = parse(&s.source).expect("parses");
        let report = campaign.run(&program);
        if s.label {
            assert!(
                !report.events.is_empty(),
                "campaign must fault sample {}:\n{}",
                s.id,
                s.source
            );
        } else {
            assert!(report.events.is_empty(), "clean sample {} faulted: {:?}", s.id, report.events);
        }
    }
}

#[test]
fn scan_to_triage_queue_end_to_end() {
    // Scan a corpus, push every finding through the team's policy into the
    // triage queue, and drain it with limited capacity.
    let team = StyleProfile::internal_teams()[0].clone();
    let standard = SecurityStandard::for_team(&team);
    let ds = DatasetBuilder::new(63)
        .teams(vec![team])
        .vulnerable_count(20)
        .vulnerable_fraction(0.5)
        .build();
    let engine = RuleEngine::default_suite();
    let mut queue = TriageQueue::with_sla(SlaPolicy::default());
    let mut pushed = 0usize;
    for (day, s) in ds.iter().enumerate() {
        let program = parse(&s.source).expect("parses");
        let graph = CallGraph::build(&program);
        for finding in engine.scan(&program) {
            let surface = graph.surface(&finding.function);
            let policy = standard.policy(finding.cwe);
            queue.push(score(finding, surface), policy, day as f64 / 4.0);
            pushed += 1;
        }
    }
    assert!(pushed >= ds.vulnerable_count(), "every flaw enqueued ({pushed})");
    let (served, backlog) = queue.drain_simulation(4, 30);
    assert_eq!(served.len() + backlog, pushed);
    // Blocking items are served no later than any Tracked item around them.
    let first_tracked = served.iter().position(|s| s.item.policy == PolicySeverity::Tracked);
    let last_blocking = served.iter().rposition(|s| s.item.policy == PolicySeverity::Blocking);
    if let (Some(ft), Some(lb)) = (first_tracked, last_blocking) {
        // With same-day arrivals they can interleave only across days.
        let ft_day = served[ft].served_day;
        let lb_day = served[lb].served_day;
        assert!(lb_day <= ft_day + 30.0, "sanity: {lb_day} vs {ft_day}");
    }
    assert!(sla_compliance(&served) > 0.5);
}

#[test]
fn stacked_ensemble_with_tuned_threshold_prices_well() {
    let ds = DatasetBuilder::new(67).vulnerable_count(80).vulnerable_fraction(0.3).build();
    let split = stratified_split(&ds, 0.4, 7);
    let mut stack = StackedEnsemble::new(model_zoo);
    stack.train(&split.train);

    // Tune the decision threshold to the economics on the training side.
    let params = CostParams::default();
    let values = CellValues {
        tp: params.breach_cost_usd * params.mean_exploitability,
        fp: -(params.triage_minutes_per_finding / 60.0 * params.analyst_hourly_usd),
        tn: 0.0,
        fn_: -params.breach_cost_usd * params.mean_exploitability,
    };
    let scores: Vec<f64> = split.train.iter().map(|s| stack.predict_proba(s)).collect();
    let truth: Vec<bool> = split.train.iter().map(|s| s.label).collect();
    let point =
        optimal_threshold(&scores, &truth, &values).expect("model probabilities are finite");

    let pred: Vec<bool> =
        split.test.iter().map(|s| stack.predict_proba(s) >= point.threshold).collect();
    let test_truth: Vec<bool> = split.test.iter().map(|s| s.label).collect();
    let metrics = vulnman::ml::eval::Metrics::from_predictions(&pred, &test_truth);
    assert!(metrics.recall() > 0.6, "{metrics:?}");
    let priced = price_deployment(&metrics, &params);
    assert!(priced.net_value > 0.0, "{priced:?}");
}
