//! Chaos suite: the Figure-1 workflow under seeded fault injection.
//!
//! A deterministic `FaultPlan` decides per (site, attempt) whether a
//! detector call, cache access, shard worker, or ML prediction fails, so
//! "chaos" runs are exactly reproducible: same corpus seed + fault seed +
//! config → byte-identical reports, regardless of worker count. The grid
//! here sweeps injection rates {0, 1%, 5%, 20%} × jobs {1, 4} on a
//! fixed-seed 300-sample corpus and pins three contracts:
//!
//! 1. no configuration panics, and every report stays complete;
//! 2. reports are byte-identical across jobs for each fault seed;
//! 3. a zero-rate plan is byte-identical to the fault-free engine, and
//!    recall degrades monotonically (never improves) as the rate rises.

use vulnman::prelude::*;

const FAULT_SEED: u64 = 20240806;
const RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.2];
const JOBS: [usize; 2] = [1, 4];

/// Fixed-seed corpus: 60 vulnerable / 300 total — large enough to hit
/// every workflow stage and both shard paths, small enough for a grid.
fn corpus() -> Dataset {
    DatasetBuilder::new(20240806).vulnerable_count(60).vulnerable_fraction(0.2).build()
}

fn registry() -> DetectorRegistry {
    let mut r = DetectorRegistry::new();
    r.register(Box::new(RuleBasedDetector::standard()));
    r
}

fn fault_run(jobs: usize, rate: f64, ds: &Dataset) -> WorkflowReport {
    let config = WorkflowConfig { jobs, ..Default::default() };
    let engine = WorkflowEngine::with_fault_config(
        registry(),
        config,
        FaultConfig::with_rate(FAULT_SEED, rate),
    );
    engine.process(ds.samples())
}

fn to_json(report: &WorkflowReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

#[test]
fn chaos_grid_completes_and_is_byte_identical_across_jobs() {
    let ds = corpus();
    for rate in RATES {
        let golden = to_json(&fault_run(JOBS[0], rate, &ds));
        for &jobs in &JOBS[1..] {
            let json = to_json(&fault_run(jobs, rate, &ds));
            assert_eq!(
                json, golden,
                "faulted report must be byte-identical at rate={rate} jobs={jobs}"
            );
        }
    }
}

#[test]
fn zero_rate_plan_is_byte_identical_to_fault_free_engine() {
    let ds = corpus();
    let plain = WorkflowEngine::new(registry(), WorkflowConfig::default());
    let golden = to_json(&plain.process(ds.samples()));
    for jobs in JOBS {
        let json = to_json(&fault_run(jobs, 0.0, &ds));
        assert_eq!(json, golden, "zero-rate plan must be a no-op at jobs={jobs}");
        assert!(!fault_run(jobs, 0.0, &ds).degradation.is_degraded());
    }
}

#[test]
fn recall_degrades_monotonically_with_injection_rate() {
    // Whether a (site, attempt) faults and which kind fires are drawn
    // independently, so the fault sets of two rates nest: every fault at
    // 1% also fires (with the same kind) at 5% and 20%. Lost assessments
    // can only unflag samples under the any-detector combine policy, so
    // recall is monotone non-increasing in the rate.
    let ds = corpus();
    let mut last = f64::INFINITY;
    for rate in RATES {
        let report = fault_run(1, rate, &ds);
        let recall = report.detection_metrics().recall();
        assert!(
            recall <= last + 1e-12,
            "recall must not improve as the fault rate rises: {recall} > {last} at rate={rate}"
        );
        last = recall;
    }
}

#[test]
fn degradation_summary_accounts_for_what_the_plan_injected() {
    let ds = corpus();
    let report = fault_run(4, 0.2, &ds);
    let deg = &report.degradation;
    // A 20% rate over 300 detector calls cannot pass silently.
    assert!(deg.is_degraded(), "20% injection must register as degraded");
    assert!(deg.transient + deg.timeout + deg.corrupt + deg.crash > 0);
    // Every lost assessment traces back to an exhaustion, a quarantine
    // skip, or an ML failure; recoveries imply at least as many retries.
    assert!(deg.retries >= deg.recovered);
    assert!(u64::try_from(deg.degraded_samples).unwrap() <= deg.assessments_lost);
    // Quarantine only ever names registered detectors.
    for name in &deg.quarantined {
        assert_eq!(name, "rule-suite", "unexpected quarantined detector {name}");
    }
}

#[test]
fn chaos_runs_keep_the_stable_metrics_schema() {
    // The `fault.*` instruments are pre-registered for every engine, so
    // dashboards see one schema whether or not a run injects faults.
    let ds = corpus();
    let plain = WorkflowEngine::new(registry(), WorkflowConfig::default());
    plain.process(ds.samples());
    let plain_schema = plain.metrics_snapshot().schema();
    for rate in [0.0, 0.2] {
        let config = WorkflowConfig { jobs: 4, ..Default::default() };
        let engine = WorkflowEngine::with_fault_config(
            registry(),
            config,
            FaultConfig::with_rate(FAULT_SEED, rate),
        );
        engine.process(ds.samples());
        assert_eq!(
            engine.metrics_snapshot().schema(),
            plain_schema,
            "metrics schema must not vary with rate={rate}"
        );
    }
}
