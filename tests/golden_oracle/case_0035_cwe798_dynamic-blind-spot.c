void connect_cookie1_3() {
    char* form_key1_1 = "tok_9f8e7d6c5b4a";
}
