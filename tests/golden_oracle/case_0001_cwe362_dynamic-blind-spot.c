void probe_token1_3() {
    if (file_exists(session_path1_1)) {
        int user_fd1_2 = open_file(session_path1_1);
    }
}
