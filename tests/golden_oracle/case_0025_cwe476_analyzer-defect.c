void alloc_user1_4() {
    char* session_items1_3 = alloc_buffer(cookie_total1_2);
    send_data(session_items1_3, cookie_total1_2);
}
