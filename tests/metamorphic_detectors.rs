//! Metamorphic detector tests: semantics-preserving source transforms must
//! not change detector verdicts.
//!
//! Three transforms from `vulnman_synth::mutate` are applied to generated
//! samples across every CWE family:
//!
//! * **alpha-renaming** — fresh local/parameter names,
//! * **comment insertion** — whole-line `//` comments (token stream is
//!   unchanged; only line numbers shift),
//! * **dead-statement insertion** — an inert, never-read declaration at the
//!   top of each function.
//!
//! The invariant is the *verdict*: whether the unit is flagged, and the
//! multiset of `(detector, CWE)` pairs. Spans and messages legitimately
//! differ (lines shift under comment insertion; messages may quote renamed
//! identifiers), so they are excluded from the signature on purpose.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vulnman::analysis::detectors::RuleEngine;
use vulnman::prelude::*;
use vulnman::synth::generator::SampleGenerator;
use vulnman::synth::mutate::{alpha_rename, insert_comments, insert_dead_statements};

/// Verdict signature: sorted multiset of `(detector, cwe id)`.
fn signature(engine: &RuleEngine, source: &str) -> Vec<(String, u32)> {
    let program = parse(source).expect("sample must parse");
    let mut sig: Vec<(String, u32)> =
        engine.scan(&program).into_iter().map(|f| (f.detector, f.cwe.id())).collect();
    sig.sort();
    sig
}

/// 100 samples per CWE family: 50 vulnerable/fixed pairs spanning the
/// Simple and Curated tiers (RealWorld units include cross-team styles that
/// are exercised by the generator tests; the metamorphic contract is
/// tier-independent).
fn family_samples(cwe: Cwe) -> Vec<String> {
    let mut g = SampleGenerator::new(0xC0DE + cwe.id() as u64, StyleProfile::mainstream());
    let mut out = Vec::with_capacity(100);
    for i in 0..50 {
        let tier = if i % 2 == 0 { Tier::Simple } else { Tier::Curated };
        let (vuln, fixed) = g.vulnerable_pair(cwe, tier, "meta");
        out.push(vuln.source);
        out.push(fixed.source);
    }
    out
}

fn assert_invariant(name: &str, transform: impl Fn(&str, u64) -> String) {
    let engine = RuleEngine::default_suite();
    for cwe in Cwe::ALL {
        for (i, source) in family_samples(cwe).iter().enumerate() {
            let mutated = transform(source, i as u64);
            let before = signature(&engine, source);
            let after = signature(&engine, &mutated);
            assert_eq!(
                before.is_empty(),
                after.is_empty(),
                "{name} flipped the flagged verdict on {cwe} sample {i}:\n--- before\n{source}\n--- after\n{mutated}"
            );
            assert_eq!(
                before, after,
                "{name} changed the (detector, cwe) signature on {cwe} sample {i}:\n--- before\n{source}\n--- after\n{mutated}"
            );
        }
    }
}

#[test]
fn alpha_renaming_preserves_verdicts() {
    assert_invariant("alpha-rename", |src, i| {
        alpha_rename(src, 1000 + i as u32).expect("transform parses")
    });
}

#[test]
fn comment_insertion_preserves_verdicts() {
    assert_invariant("comment-insertion", |src, i| {
        let mut rng = StdRng::seed_from_u64(7700 + i);
        insert_comments(src, &mut rng)
    });
}

#[test]
fn dead_statement_insertion_preserves_verdicts() {
    assert_invariant("dead-statement-insertion", |src, i| {
        let mut rng = StdRng::seed_from_u64(8800 + i);
        insert_dead_statements(src, &mut rng).expect("transform parses")
    });
}

#[test]
fn transforms_compose_without_changing_verdicts() {
    // The transforms are independent rewrites, so their composition is also
    // semantics-preserving — a cheap way to reach deeper mutants.
    let engine = RuleEngine::default_suite();
    for cwe in [Cwe::SqlInjection, Cwe::UseAfterFree, Cwe::OutOfBoundsWrite] {
        for (i, source) in family_samples(cwe).iter().take(20).enumerate() {
            let mut rng = StdRng::seed_from_u64(9900 + i as u64);
            let mutated = insert_comments(
                &insert_dead_statements(&alpha_rename(source, 31 + i as u32).unwrap(), &mut rng)
                    .unwrap(),
                &mut rng,
            );
            assert_eq!(
                signature(&engine, source),
                signature(&engine, &mutated),
                "composed transform changed verdicts on {cwe} sample {i}"
            );
        }
    }
}
