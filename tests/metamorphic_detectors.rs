//! Metamorphic detector tests: semantics-preserving source transforms must
//! not change detector verdicts.
//!
//! Three transforms from `vulnman_synth::mutate` are applied to generated
//! samples across every CWE family:
//!
//! * **alpha-renaming** — fresh local/parameter names,
//! * **comment insertion** — whole-line `//` comments (token stream is
//!   unchanged; only line numbers shift),
//! * **dead-statement insertion** — an inert, never-read declaration at the
//!   top of each function.
//!
//! The invariant is the *verdict*: whether the unit is flagged, and the
//! multiset of `(detector, CWE)` pairs. Spans and messages legitimately
//! differ (lines shift under comment insertion; messages may quote renamed
//! identifiers), so they are excluded from the signature on purpose.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vulnman::analysis::detectors::RuleEngine;
use vulnman::lang::clone::{CloneConfig, CloneIndex};
use vulnman::prelude::*;
use vulnman::synth::generator::SampleGenerator;
use vulnman::synth::mutate::{alpha_rename, insert_comments, insert_dead_statements};

/// Verdict signature: sorted multiset of `(detector, cwe id)`.
fn signature(engine: &RuleEngine, source: &str) -> Vec<(String, u32)> {
    let program = parse(source).expect("sample must parse");
    let mut sig: Vec<(String, u32)> =
        engine.scan(&program).into_iter().map(|f| (f.detector, f.cwe.id())).collect();
    sig.sort();
    sig
}

/// 100 samples per CWE family: 50 vulnerable/fixed pairs spanning the
/// Simple and Curated tiers (RealWorld units include cross-team styles that
/// are exercised by the generator tests; the metamorphic contract is
/// tier-independent).
fn family_samples(cwe: Cwe) -> Vec<String> {
    let mut g = SampleGenerator::new(0xC0DE + cwe.id() as u64, StyleProfile::mainstream());
    let mut out = Vec::with_capacity(100);
    for i in 0..50 {
        let tier = if i % 2 == 0 { Tier::Simple } else { Tier::Curated };
        let (vuln, fixed) = g.vulnerable_pair(cwe, tier, "meta");
        out.push(vuln.source);
        out.push(fixed.source);
    }
    out
}

fn assert_invariant(name: &str, transform: impl Fn(&str, u64) -> String) {
    let engine = RuleEngine::default_suite();
    for cwe in Cwe::ALL {
        for (i, source) in family_samples(cwe).iter().enumerate() {
            let mutated = transform(source, i as u64);
            let before = signature(&engine, source);
            let after = signature(&engine, &mutated);
            assert_eq!(
                before.is_empty(),
                after.is_empty(),
                "{name} flipped the flagged verdict on {cwe} sample {i}:\n--- before\n{source}\n--- after\n{mutated}"
            );
            assert_eq!(
                before, after,
                "{name} changed the (detector, cwe) signature on {cwe} sample {i}:\n--- before\n{source}\n--- after\n{mutated}"
            );
        }
    }
}

#[test]
fn alpha_renaming_preserves_verdicts() {
    assert_invariant("alpha-rename", |src, i| {
        alpha_rename(src, 1000 + i as u32).expect("transform parses")
    });
}

#[test]
fn comment_insertion_preserves_verdicts() {
    assert_invariant("comment-insertion", |src, i| {
        let mut rng = StdRng::seed_from_u64(7700 + i);
        insert_comments(src, &mut rng)
    });
}

#[test]
fn dead_statement_insertion_preserves_verdicts() {
    assert_invariant("dead-statement-insertion", |src, i| {
        let mut rng = StdRng::seed_from_u64(8800 + i);
        insert_dead_statements(src, &mut rng).expect("transform parses")
    });
}

/// The clone index must see through exactly the disguises the metamorphic
/// transforms apply: an alpha-renamed, comment-padded, or dead-statement-
/// padded copy lands in the same clone class as its original. Shingles
/// normalize identifiers and comments never reach the token stream, so
/// the first two transforms leave the shingle set bit-identical and must
/// survive the default configuration. Dead-statement insertion is a real
/// Type-3 edit whose relative weight grows as the unit shrinks — on the
/// deliberately tiny generated units one inert declaration costs up to
/// ~45% of the shingle set — so that transform is checked under the
/// small-unit calibration (lower verify threshold, steeper-recall LSH
/// bands) that DESIGN.md derives for near-miss clones.
#[test]
fn semantics_preserving_transforms_stay_in_the_clone_class() {
    type Transform = Box<dyn Fn(&str, u64) -> String>;
    let small_unit = CloneConfig { threshold: 0.45, bands: 32, rows: 2, ..CloneConfig::default() };
    let transforms: [(&str, CloneConfig, Transform); 3] = [
        (
            "alpha-rename",
            CloneConfig::default(),
            Box::new(|src: &str, i: u64| alpha_rename(src, 41 + i as u32).unwrap()),
        ),
        (
            "comment-insertion",
            CloneConfig::default(),
            Box::new(|src: &str, i: u64| {
                let mut rng = StdRng::seed_from_u64(5100 + i);
                insert_comments(src, &mut rng)
            }),
        ),
        (
            "dead-statement-insertion",
            small_unit,
            Box::new(|src: &str, i: u64| {
                let mut rng = StdRng::seed_from_u64(5200 + i);
                insert_dead_statements(src, &mut rng).unwrap()
            }),
        ),
    ];
    for (name, config, transform) in &transforms {
        for cwe in [Cwe::SqlInjection, Cwe::UseAfterFree, Cwe::OutOfBoundsWrite, Cwe::PathTraversal]
        {
            let originals: Vec<String> = family_samples(cwe).into_iter().take(12).collect();
            // Interleave original / mutated: entries 2i and 2i+1.
            let corpus: Vec<String> = originals
                .iter()
                .enumerate()
                .flat_map(|(i, src)| [src.clone(), transform(src, i as u64)])
                .collect();
            let entries: Vec<(u64, &str)> =
                corpus.iter().enumerate().map(|(i, s)| (i as u64, s.as_str())).collect();
            let index = CloneIndex::build(&entries, *config);
            let classes = index.classes();
            for i in 0..originals.len() as u32 {
                let (orig, mutated) = (2 * i, 2 * i + 1);
                assert!(
                    classes.iter().any(|c| c.contains(&orig) && c.contains(&mutated)),
                    "{name} pushed {cwe} sample {i} out of its clone class:\n{}",
                    corpus[mutated as usize]
                );
            }
        }
    }
}

/// Clone-aware dedup is an optimization, not a semantic change: a
/// duplicate-heavy corpus (alpha-renamed copies, the clones exact hashing
/// cannot fold) must produce a byte-identical report with dedup on or off,
/// sequentially or sharded.
#[test]
fn dedup_report_byte_identical_across_jobs() {
    let base = DatasetBuilder::new(0x5EED).vulnerable_count(6).vulnerable_fraction(0.4).build();
    let mut ds = Dataset::new();
    let mut next_id = base.samples().iter().map(|s| s.id).max().unwrap_or(0) + 1;
    for s in base.samples() {
        ds.push(s.clone());
        for salt in 1..=2u32 {
            if let Some(renamed) = alpha_rename(&s.source, salt) {
                let mut dup = s.clone();
                dup.id = next_id;
                dup.source = renamed;
                dup.duplicate_of = Some(s.id);
                next_id += 1;
                ds.push(dup);
            }
        }
    }
    let run = |jobs: usize, dedup: bool| {
        let mut registry = DetectorRegistry::new();
        registry.register(Box::new(RuleBasedDetector::standard()));
        registry.register(Box::new(SemanticDetector::standard()));
        let config = WorkflowConfig { jobs, dedup, ..Default::default() };
        let report = WorkflowEngine::new(registry, config).process(ds.samples());
        serde_json::to_string(&report).expect("report serializes")
    };
    let baseline = run(1, false);
    for jobs in [1usize, 4] {
        assert_eq!(baseline, run(jobs, true), "dedup changed report bytes at jobs={jobs}");
    }
}

#[test]
fn transforms_compose_without_changing_verdicts() {
    // The transforms are independent rewrites, so their composition is also
    // semantics-preserving — a cheap way to reach deeper mutants.
    let engine = RuleEngine::default_suite();
    for cwe in [Cwe::SqlInjection, Cwe::UseAfterFree, Cwe::OutOfBoundsWrite] {
        for (i, source) in family_samples(cwe).iter().take(20).enumerate() {
            let mut rng = StdRng::seed_from_u64(9900 + i as u64);
            let mutated = insert_comments(
                &insert_dead_statements(&alpha_rename(source, 31 + i as u32).unwrap(), &mut rng)
                    .unwrap(),
                &mut rng,
            );
            assert_eq!(
                signature(&engine, source),
                signature(&engine, &mutated),
                "composed transform changed verdicts on {cwe} sample {i}"
            );
        }
    }
}
