//! Golden determinism tests for the corpus graph and blast-radius triage:
//! the whole-corpus call graph report — and the triage order it induces —
//! must be byte-identical regardless of worker count or cache
//! configuration.
//!
//! The blast-radius term feeds the remediation queue; if two runners
//! disagree on it, the same finding lands at two different queue positions
//! and analysts chase phantom re-prioritizations. These tests pin that
//! contract on a fixed-seed cross-file corpus end to end, through the same
//! path `vulnman graph` uses.

use vulnman::analysis::corpusgraph::CorpusGraph;
use vulnman::analysis::detectors::RuleEngine;
use vulnman::analysis::severity::score;
use vulnman::core::customize::PolicySeverity;
use vulnman::core::triage::TriageQueue;
use vulnman::lang::AnalysisCache;
use vulnman::prelude::*;

/// Fixed-seed cross-file corpus: sibling units of each project bridge-call
/// into each other, so edge resolution, closures, and centrality all cross
/// unit boundaries.
fn corpus() -> Dataset {
    DatasetBuilder::new(20260808)
        .vulnerable_count(40)
        .vulnerable_fraction(0.3)
        .cross_file_links(true)
        .build()
}

fn build(ds: &Dataset, jobs: usize, cache: bool) -> CorpusGraph {
    let cache = if cache { AnalysisCache::new() } else { AnalysisCache::disabled() };
    CorpusGraph::from_samples(ds.samples(), &cache, jobs, &Registry::noop())
        .expect("generated corpus parses")
}

#[test]
fn graph_report_bytes_identical_across_jobs_and_cache() {
    let ds = corpus();
    let golden = serde_json::to_string(&build(&ds, 1, true).report()).expect("serializes");
    assert!(!golden.is_empty());
    for (jobs, cache) in [(1, false), (4, true), (4, false), (8, true)] {
        let json = serde_json::to_string(&build(&ds, jobs, cache).report()).expect("serializes");
        assert_eq!(
            json, golden,
            "CorpusGraphReport must be byte-identical at jobs={jobs} cache={cache}"
        );
    }
}

#[test]
fn blast_ranked_triage_order_identical_across_jobs_and_cache() {
    let ds = corpus();
    let engine = RuleEngine::default_suite();
    // The full `vulnman graph`-to-queue path: scan, score with the
    // corpus-wide surface, weight by blast radius, drain.
    let serve_trace = |jobs: usize, cache: bool| -> Vec<String> {
        let graph = build(&ds, jobs, cache);
        let mut queue = TriageQueue::new();
        for sample in ds.samples() {
            for f in engine.scan_source(&sample.source).expect("corpus parses") {
                let surface = graph
                    .surface_of(sample.id, &f.function)
                    .unwrap_or(vulnman::analysis::reachability::Surface::Local);
                let blast = graph.blast_of(sample.id, &f.function).unwrap_or(0.0);
                queue.push_with_blast(score(f, surface), PolicySeverity::Tracked, 0.0, blast);
            }
        }
        let (served, backlog) = queue.drain_simulation(5, 100);
        assert_eq!(backlog, 0, "horizon must drain the whole queue");
        served
            .iter()
            .map(|s| {
                format!(
                    "{}|{:?}|{}|{:.6}",
                    s.item.finding.finding.function,
                    s.item.finding.finding.cwe,
                    s.item.finding.finding.span.start,
                    s.item.finding.priority
                )
            })
            .collect()
    };
    let golden = serve_trace(1, true);
    assert!(!golden.is_empty(), "corpus must produce findings");
    for (jobs, cache) in [(1, false), (4, true), (4, false)] {
        assert_eq!(
            serve_trace(jobs, cache),
            golden,
            "blast-ranked service order must not vary with jobs={jobs} cache={cache}"
        );
    }
}

#[test]
fn graph_metrics_families_are_registered_and_stable() {
    let ds = corpus();
    let snap = |jobs: usize| {
        let metrics = Registry::new();
        vulnman::analysis::corpusgraph::register_graph_instruments(&metrics);
        let cache = AnalysisCache::with_metrics(&metrics);
        CorpusGraph::from_samples(ds.samples(), &cache, jobs, &metrics).expect("parses");
        metrics.snapshot()
    };
    let s1 = snap(1);
    let s4 = snap(4);
    for family in
        ["graph.builds", "graph.nodes", "graph.edges", "graph.cross_unit_edges", "graph.sccs"]
    {
        let c1 = s1.counters[family];
        assert!(c1 > 0, "{family} must be recorded");
        assert_eq!(c1, s4.counters[family], "{family} must not vary with jobs");
    }
}
