//! End-to-end determinism contract for the differential oracle.
//!
//! The acceptance bar from the design: running `vulnman oracle` over a
//! 500-sample corpus must produce a *byte-identical* serialized report
//! regardless of `--jobs` or cache settings, and every disagreement must
//! land in exactly one taxonomy bucket.

use vulnman::analysis::oracle::{DifferentialOracle, DisagreementKind, OracleConfig, View};
use vulnman::prelude::*;

/// The smoke-corpus parameters CI and the golden corpus are pinned to:
/// 100 vulnerable samples at 20% prevalence -> 500 samples total, with 5%
/// label noise so every taxonomy bucket is exercised.
fn smoke_corpus() -> Dataset {
    DatasetBuilder::new(42).vulnerable_count(100).vulnerable_fraction(0.2).label_noise(0.05).build()
}

#[test]
fn reports_are_byte_identical_across_jobs_and_cache_settings() {
    let ds = smoke_corpus();
    assert_eq!(ds.len(), 500, "smoke corpus drifted; update the pinned parameters");
    let reference =
        DifferentialOracle::with_config(OracleConfig { jobs: 1, cache: true }).run(ds.samples());
    let reference_json = serde_json::to_string(&reference).expect("report serializes");
    for (jobs, cache) in [(2, true), (4, true), (4, false), (7, true)] {
        let report =
            DifferentialOracle::with_config(OracleConfig { jobs, cache }).run(ds.samples());
        let json = serde_json::to_string(&report).expect("report serializes");
        assert_eq!(
            json, reference_json,
            "report differs from the jobs=1 reference at jobs={jobs} cache={cache}"
        );
    }
}

#[test]
fn every_disagreement_is_classified_and_counted_exactly_once() {
    let ds = smoke_corpus();
    let report = DifferentialOracle::new().run(ds.samples());
    assert_eq!(
        report.taxonomy.total(),
        report.disagreements.len(),
        "taxonomy counts must partition the disagreement list"
    );
    for kind in DisagreementKind::ALL {
        assert_eq!(
            report.taxonomy.count(kind),
            report.disagreements.iter().filter(|d| d.kind == kind).count(),
            "per-kind count drifted for {kind}"
        );
    }
    // Disagreements arrive in corpus order so diffs of two reports line up.
    let ids: Vec<u64> = report.disagreements.iter().map(|d| d.sample_id).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "disagreements must be emitted in corpus order");
}

#[test]
fn label_noise_artifacts_match_the_datasets_own_provenance() {
    let ds = smoke_corpus();
    let report = DifferentialOracle::new().run(ds.samples());
    let planted: Vec<u64> = ds.mislabeled_ids();
    let recovered: Vec<u64> = report
        .disagreements
        .iter()
        .filter(|d| d.kind == DisagreementKind::LabelNoiseArtifact)
        .map(|d| d.sample_id)
        .collect();
    assert_eq!(
        recovered, planted,
        "the oracle must rediscover exactly the corruptions the dataset planted"
    );
    for d in &report.disagreements {
        if d.kind == DisagreementKind::LabelNoiseArtifact {
            assert_eq!(d.view, View::RecordedLabel, "label noise implicates the recorded label");
        }
    }
}

#[test]
fn oracle_metrics_schema_is_stable_and_populated() {
    let ds = smoke_corpus();
    let metrics = Registry::new();
    let oracle = DifferentialOracle::with_metrics(OracleConfig::default(), &metrics);
    let report = oracle.run(ds.samples());
    let snapshot = metrics.snapshot();
    let json = serde_json::to_string(&snapshot).expect("snapshot serializes");
    // Schema stability: every oracle.* instrument exists even when its
    // count is zero for this corpus (mirrors the fault.* contract).
    for key in [
        "oracle.samples",
        "oracle.agreed",
        "oracle.disagreements",
        "oracle.kind.static_false_positive",
        "oracle.kind.static_blind_spot",
        "oracle.kind.dynamic_blind_spot",
        "oracle.kind.label_noise_artifact",
        "oracle.kind.analyzer_defect",
        "oracle.kind.semantic_blind_spot",
        "oracle.kind.semantic_false_positive",
        "oracle.shrunk",
        "oracle.shrink_steps",
        "oracle.shrink_attempts",
        "span.oracle.run",
    ] {
        assert!(json.contains(&format!("\"{key}\"")), "metric `{key}` missing from snapshot");
    }
    assert_eq!(snapshot.counters.get("oracle.samples").copied(), Some(report.samples as u64));
    assert_eq!(
        snapshot.counters.get("oracle.disagreements").copied(),
        Some(report.disagreements.len() as u64)
    );
}
