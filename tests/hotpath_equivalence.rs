//! Equivalence suites for the raw-speed hot paths.
//!
//! The performance work (zero-copy lexing, interned ASTs, run-scoped
//! scratch caches, SCC-parallel abstract interpretation) is only
//! admissible if it is observationally invisible: same tokens, same
//! findings, same report bytes. These tests pin that contract on the
//! full synthetic corpus — every CWE family plus the mutation
//! operators the corpus generator applies.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vulnman::analysis::checkers::SemanticEngine;
use vulnman::lang::lexer::{lex, lex_ref};
use vulnman::lang::token::TokenKind;
use vulnman::prelude::*;
use vulnman::synth::mutate::{alpha_rename, insert_comments, insert_dead_statements};

/// Full-coverage corpus: every CWE family, both labels, mixed tiers.
fn corpus() -> Dataset {
    DatasetBuilder::new(0x5EED_CAFE).vulnerable_count(70).vulnerable_fraction(0.35).build()
}

/// The corpus sources plus every mutation operator applied to each, so the
/// lexer sees renamed identifiers, injected comments, and dead statements.
fn corpus_with_mutants() -> Vec<String> {
    let ds = corpus();
    let mut rng = StdRng::seed_from_u64(7);
    let mut out = Vec::new();
    for s in ds.iter() {
        out.push(s.source.clone());
        if let Some(m) = alpha_rename(&s.source, 3) {
            out.push(m);
        }
        out.push(insert_comments(&s.source, &mut rng));
        if let Some(m) = insert_dead_statements(&s.source, &mut rng) {
            out.push(m);
        }
    }
    out
}

/// The zero-copy lexer must agree with the owning lexer token-for-token,
/// and every borrowed payload must slice straight out of the source buffer
/// at the span the token claims.
#[test]
fn zero_copy_lexer_matches_owned_lexing_on_full_corpus() {
    let sources = corpus_with_mutants();
    assert!(sources.len() > 500, "corpus unexpectedly small: {}", sources.len());
    for src in &sources {
        let owned = lex(src).expect("corpus sample must lex");
        let zero = lex_ref(src).expect("corpus sample must lex zero-copy");
        assert_eq!(owned.tokens.len(), zero.tokens.len());
        assert_eq!(owned.comments.len(), zero.comments.len());
        let mut prev_start = 0usize;
        for (o, z) in owned.tokens.iter().zip(&zero.tokens) {
            assert_eq!(o.span, z.span, "token spans diverge");
            assert_eq!(o.kind, z.kind.clone().into_owned(), "token kinds diverge");
            // Spans are monotone and in-bounds: the zero-copy lexer hands
            // these to downstream slicing, so a bad span is a panic later.
            assert!(z.span.start >= prev_start && z.span.end <= src.len());
            prev_start = z.span.start;
            // Identifier payloads are pure borrows of the source: the text
            // at the span *is* the payload.
            if let TokenKind::Ident(name) = &z.kind {
                assert_eq!(
                    &src[z.span.start..z.span.end],
                    name.as_ref(),
                    "ident payload must slice back to its span"
                );
            }
        }
        for (o, z) in owned.comments.iter().zip(&zero.comments) {
            assert_eq!(o.text, z.text.as_ref());
            assert_eq!(o.text_span, z.text_span);
            assert_eq!(
                &src[z.text_span.start..z.text_span.end],
                z.text.as_ref(),
                "comment text_span must slice back to the trimmed text"
            );
        }
    }
}

/// Parsing through the interned-AST path is deterministic and the printer
/// is a fixpoint: print(parse(print(parse(s)))) == print(parse(s)).
#[test]
fn interned_parse_is_deterministic_and_printer_is_fixpoint() {
    for src in corpus_with_mutants().iter().take(400) {
        let p1 = parse(src).expect("corpus sample must parse");
        let p2 = parse(src).expect("corpus sample must parse");
        assert_eq!(p1, p2, "parse must be deterministic");
        let printed = print_program(&p1);
        let reparsed = parse(&printed).expect("printed program must reparse");
        assert_eq!(print_program(&reparsed), printed, "printer must be a fixpoint");
    }
}

/// The SCC-parallel abstract-interpretation driver must be invisible:
/// identical findings and solver statistics at every worker count,
/// including on recursive programs where cycle members share summaries.
#[test]
fn parallel_absint_matches_sequential_on_corpus() {
    let ds = corpus();
    let seq = SemanticEngine::new();
    let par = SemanticEngine::new().with_jobs(4);
    let mut checked = 0usize;
    for s in ds.iter() {
        let program = parse(&s.source).expect("corpus sample must parse");
        let a = seq.analyze(&program);
        let b = par.analyze(&program);
        assert_eq!(a.findings, b.findings, "findings diverge on {}", s.id);
        assert_eq!(a.stats, b.stats, "solver stats diverge on {}", s.id);
        checked += 1;
    }
    assert!(checked >= 200, "corpus unexpectedly small: {checked}");

    // A recursion clique big enough to clear the parallel driver's
    // small-program gate.
    let rec = "int leaf() { return 2; }\n\
               int even(int n) { if (n) { return odd(n - 1); } return 1; }\n\
               int odd(int n) { if (n) { return even(n - 1); } return 0; }\n\
               int top_fn(int x) { int d = even(x) + leaf(); return 10 / d; }";
    let program = parse(rec).unwrap();
    let a = seq.analyze(&program);
    let b = par.analyze(&program);
    assert_eq!(a.findings, b.findings);
    assert_eq!(a.stats, b.stats);
}

/// Full-pipeline byte identity with the semantic detector registered, so
/// the parallel absint path runs inside the workflow: jobs {1,4} x cache
/// {on,off} must all serialize to the same report.
#[test]
fn report_bytes_identical_with_parallel_semantic_detector() {
    let ds = corpus();
    let run = |jobs: usize, cache: bool| {
        let mut registry = DetectorRegistry::new();
        registry.register(Box::new(RuleBasedDetector::standard()));
        registry.register(Box::new(SemanticDetector::new(
            SemanticEngine::new().with_jobs(jobs.max(2)),
        )));
        let config = WorkflowConfig { jobs, cache, ..Default::default() };
        let engine = WorkflowEngine::new(registry, config);
        serde_json::to_string(&engine.process(ds.samples())).expect("report serializes")
    };
    let golden = run(1, true);
    assert!(!golden.is_empty());
    for (jobs, cache) in [(1, false), (4, true), (4, false)] {
        assert_eq!(run(jobs, cache), golden, "report bytes diverge at jobs={jobs} cache={cache}");
    }
}
