//! # vulnman
//!
//! An AI-based security vulnerability management platform in Rust — a full
//! reproduction of *"Bridging the Gap: A Study of AI-based Vulnerability
//! Management between Industry and Academia"* (Wan et al., DSN 2024).
//!
//! The workspace builds everything the paper describes or depends on:
//!
//! * [`lang`] — a mini-C program-analysis substrate (lexer, parser, CFG,
//!   data-flow, interprocedural taint engine),
//! * [`synth`] — a synthetic vulnerable-code corpus generator with explicit
//!   knobs for every data pathology the paper discusses (imbalance, label
//!   noise, duplication, diversity, complexity tiers, team styles),
//! * [`analysis`] — the traditional rule-based toolchain of the paper's
//!   Figure 1 (specialized static detectors, severity scoring,
//!   reachability/threat modeling, auto-fix),
//! * [`ml`] — from-scratch ML detection models across five families
//!   standing in for the surveyed DL architectures,
//! * [`core`] — the Figure-1 workflow engine plus one module per gap study
//!   (agreement, customization, cost model, anonymization, SFT harvesting,
//!   artifact meta-study, repair engines, security training).
//!
//! ## Quick start
//!
//! ```
//! use vulnman::prelude::*;
//!
//! // 1. Generate an industry-shaped corpus.
//! let corpus = DatasetBuilder::new(42).vulnerable_count(20).vulnerable_fraction(0.2).build();
//!
//! // 2. Stand up the Figure-1 workflow with the rule suite.
//! let mut registry = DetectorRegistry::new();
//! registry.register(Box::new(RuleBasedDetector::standard()));
//! let engine = WorkflowEngine::new(registry, WorkflowConfig::default());
//!
//! // 3. Run the pipeline and inspect the outcome.
//! let report = engine.process(corpus.samples());
//! assert!(report.detection_metrics().recall() > 0.5);
//! assert!(report.auto_fixed + report.ai_fixed + report.expert_fixed > 0);
//! ```
//!
//! The experiment harness reproducing the paper's figures and quantitative
//! claims lives in the `vulnman-bench` crate (`cargo run --release -p
//! vulnman-bench --bin all_experiments`); results are recorded in
//! `EXPERIMENTS.md`.

#![warn(missing_docs)]

pub use vulnman_analysis as analysis;
pub use vulnman_core as core;
pub use vulnman_faults as faults;
pub use vulnman_lang as lang;
pub use vulnman_ml as ml;
pub use vulnman_obs as obs;
pub use vulnman_serve as serve;
pub use vulnman_synth as synth;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use vulnman_analysis::autofix::AutoFixer;
    pub use vulnman_analysis::detectors::RuleEngine;
    pub use vulnman_analysis::reachability::{CallGraph, Surface};
    pub use vulnman_core::costmodel::{price_deployment, CostParams};
    pub use vulnman_core::detector::{
        CombinePolicy, Detector, DetectorRegistry, MlDetector, RuleBasedDetector, SemanticDetector,
    };
    pub use vulnman_core::workflow::{
        DegradationSummary, WorkflowConfig, WorkflowEngine, WorkflowReport,
    };
    pub use vulnman_faults::{FaultConfig, FaultKind, FaultMix, FaultPlan, Site};
    pub use vulnman_lang::taint::{TaintAnalysis, TaintConfig};
    pub use vulnman_lang::{parse, print_program};
    pub use vulnman_ml::pipeline::{model_zoo, DetectionModel};
    pub use vulnman_ml::split::{split_by_project, stratified_split};
    pub use vulnman_obs::{Registry, Snapshot};
    pub use vulnman_synth::cwe::{Cwe, CweDistribution};
    pub use vulnman_synth::dataset::{Dataset, DatasetBuilder};
    pub use vulnman_synth::style::StyleProfile;
    pub use vulnman_synth::tier::Tier;
}
