//! `vulnman` — command-line front end for the vulnerability-management
//! platform.
//!
//! ```text
//! vulnman scan <file> [--dynamic] [--sanitizer <name>]...   scan a mini-C unit
//! vulnman lint <file>...                                     semantic (abstract-interpretation) checkers
//! vulnman fix <file> [--cwe <id>]                            auto-fix and print the patch
//! vulnman exec <file>                                        run under the sanitizer interpreter
//! vulnman gen [--seed N] [--count N] [--fraction F] [--out <dir>]
//!                                                            generate a labeled corpus
//! vulnman workflow [--seed N] [--count N] [--fraction F] [--jobs N] [--no-cache]
//!                  [--dedup] [--fault-seed N] [--fault-rate F] [--max-retries N]
//!                  [--report-out FILE] [--metrics-out FILE] [--metrics-prom FILE]
//!                  [--metrics-summary]
//!                                                            run the Figure-1 pipeline
//! vulnman oracle [--seed N] [--count N] [--fraction F] [--noise F] [--jobs N]
//!                [--clones] [--report-out FILE] [--baseline FILE] [--write-baseline FILE]
//!                [--shrink-golden DIR] [--max-shrunk N]
//!                                                            differential disagreement triage
//! vulnman clones <file>... [--threshold F] [--shingle-k N] [--jobs N]
//!                                                            group files into near-clone classes
//! vulnman graph [--seed N] [--count N] [--fraction F] [--jobs N] [--no-cache]
//!               [--top N] [--report-out FILE] [--metrics-out FILE]
//!                                                            corpus call graph + blast-radius triage
//! vulnman audit [--check] [--baseline FILE] [--write-baseline] [--seed N]
//!               [--samples N] [--jobs N] [--no-ml] [--out FILE] [--report-out FILE]
//!                                                            detector coverage × precision matrix
//! vulnman sft [--seed N] [--count N]                         print an SFT dataset (JSONL)
//! vulnman serve [--addr H:P] [--workers N] [--queue N] [--max-request-bytes N]
//!               [--fault-rate F] [--fault-seed N] [--max-retries N]
//!                                                            run the concurrent analysis service
//! ```

use std::process::ExitCode;
use vulnman::analysis::detectors::{RuleEngine, TaintDetector};
use vulnman::analysis::severity::{score, triage_order};
use vulnman::core::sft::harvest;
use vulnman::lang::interp::{run_program, InterpConfig};
use vulnman::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "scan" => cmd_scan(rest),
        "lint" => return cmd_lint(rest),
        "fix" => cmd_fix(rest),
        "exec" => cmd_exec(rest),
        "gen" => cmd_gen(rest),
        "workflow" => cmd_workflow(rest),
        "oracle" => cmd_oracle(rest),
        "clones" => cmd_clones(rest),
        "graph" => cmd_graph(rest),
        "audit" => cmd_audit(rest),
        "sft" => cmd_sft(rest),
        "serve" => cmd_serve(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str =
    "usage: vulnman <scan|lint|fix|exec|gen|workflow|oracle|clones|graph|audit|sft|serve|help> [options]
  scan <file> [--dynamic] [--sanitizer <name>]   scan a mini-C unit
  lint <file>...                                 run only the semantic (abstract-
                                                 interpretation) checkers; print evidence
                                                 traces; exit 1 when any finding survives
  fix <file> [--cwe <id>]                        auto-fix and print the patch
  exec <file>                                    run under the sanitizer interpreter
  gen [--seed N] [--count N] [--fraction F] [--out DIR]
  workflow [--seed N] [--count N] [--fraction F] [--jobs N] [--no-cache]
           [--dedup]                analyze one representative per near-clone
                                    class and propagate findings to members
           [--fault-rate F]         inject seeded faults at this rate (chaos mode)
           [--fault-seed N]         fault-plan seed (default 0; independent of --seed)
           [--max-retries N]        retry budget per faulted call (default 3)
           [--report-out FILE]      write the full workflow report as JSON
           [--metrics-out FILE]     dump the metrics snapshot as JSON
           [--metrics-prom FILE]    dump Prometheus text exposition
           [--metrics-summary]      print the per-stage timing table
  oracle [--seed N] [--count N] [--fraction F] [--noise F] [--jobs N] [--no-cache]
           [--clones]               add the corpus-level clone-consistency view
           [--report-out FILE]      write the full disagreement report as JSON
           [--baseline FILE]        fail if analyzer-defect count exceeds this baseline
           [--write-baseline FILE]  record the current analyzer-defect count
           [--shrink-golden DIR]    shrink disagreements into a golden reproducer corpus
           [--max-shrunk N]         cap golden reproducers written (default 12)
           [--metrics-out FILE] [--metrics-prom FILE] [--metrics-summary]
  clones <file>... [--threshold F] [--shingle-k N] [--jobs N]
                                                 group mini-C files into verified
                                                 near-clone classes (MinHash/LSH)
  graph [--seed N] [--count N] [--fraction F] [--jobs N] [--no-cache]
           [--top N]                blast-radius leaders to print (default 10)
           [--report-out FILE]      write the full corpus-graph report as JSON
           [--metrics-out FILE] [--metrics-prom FILE] [--metrics-summary]
                                                 build the cross-sample call graph over a
                                                 generated multi-file corpus and rank
                                                 functions by blast radius
  audit [--check]            fail when the matrix regresses against the baseline
           [--baseline FILE]        committed baseline (default tests/audit_baseline.json)
           [--write-baseline]       record the current matrix as the baseline
           [--seed N] [--samples N] [--jobs N]
                                    audit corpus parameters (byte-identical at any --jobs)
           [--no-ml]                drop the trained-model column (faster; static only)
           [--out FILE]             write the matrix as JSON
           [--report-out FILE]      write the matrix as markdown (the CI artifact)
           [--metrics-out FILE] [--metrics-prom FILE] [--metrics-summary]
                                                 CWE × detector-family coverage/precision
                                                 matrix over a seeded per-class corpus
  sft [--seed N] [--count N]
  serve [--addr H:P]         listen address (default 127.0.0.1:7433; port 0 = ephemeral)
           [--workers N]            worker threads executing requests (default 4)
           [--queue N]              admission bound; excess requests are shed (default 64)
           [--max-request-bytes N]  per-line/body byte cap (default 1 MiB)
           [--fault-rate F] [--fault-seed N] [--max-retries N]
                                    inject seeded faults per request (chaos mode)
        clients send JSONL requests {\"id\",\"kind\":analyze|lint|oracle|clones|graph|audit,\"source\",...}
        or a single HTTP POST with the same JSON body";

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn flag_present(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid value for {name}: {v}")),
    }
}

fn read_source(args: &[String]) -> Result<(String, String), String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| "missing <file> argument".to_string())?;
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok((path.clone(), source))
}

fn cmd_scan(args: &[String]) -> Result<(), String> {
    let (path, source) = read_source(args)?;
    let program = parse(&source).map_err(|e| format!("{path}: {e}"))?;

    let mut engine = if flag_present(args, "--dynamic") {
        RuleEngine::full_suite()
    } else {
        RuleEngine::default_suite()
    };
    // Team sanitizer customization (repeatable flag).
    let sanitizers: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--sanitizer")
        .filter_map(|(i, _)| args.get(i + 1).map(String::as_str))
        .collect();
    if !sanitizers.is_empty() {
        let mut config = TaintConfig::default_config();
        for s in &sanitizers {
            config.add_sanitizer(s.to_string());
        }
        // Rebuild the suite with the team-customized taint detector in
        // place of the stock one (the other detectors are
        // vocabulary-independent).
        let mut custom = RuleEngine::new();
        custom.register(Box::new(TaintDetector::with_config(config.clone())));
        custom.register(Box::new(vulnman::analysis::detectors::BoundsDetector));
        custom.register(Box::new(vulnman::analysis::detectors::UseAfterFreeDetector));
        custom.register(Box::new(vulnman::analysis::detectors::OverflowDetector));
        custom.register(Box::new(vulnman::analysis::detectors::NullDerefDetector));
        custom.register(Box::new(vulnman::analysis::detectors::CredentialDetector));
        custom.register(Box::new(vulnman::analysis::detectors::RaceDetector));
        if flag_present(args, "--dynamic") {
            let interp_config =
                vulnman::lang::interp::InterpConfig { taint: config, ..Default::default() };
            custom.register(Box::new(vulnman::analysis::dynamic::DynamicSanitizer::with_config(
                interp_config,
            )));
        }
        engine = custom;
    }

    let graph = CallGraph::build(&program);
    let mut findings: Vec<_> = engine
        .scan(&program)
        .into_iter()
        .map(|f| {
            let surface = graph.surface(&f.function);
            score(f, surface)
        })
        .collect();
    triage_order(&mut findings);
    if findings.is_empty() {
        println!("{path}: no findings");
        return Ok(());
    }
    println!("{path}: {} finding(s)", findings.len());
    for s in &findings {
        println!(
            "  [{:>5.2}] line {:>3}  {}  in `{}` ({:?}) — {} [{}]",
            s.priority,
            s.finding.line(),
            s.finding.cwe,
            s.finding.function,
            s.surface,
            s.finding.message,
            s.finding.detector,
        );
    }
    Ok(())
}

/// `vulnman lint` — the semantic (abstract-interpretation) checkers only.
/// Every finding carries a machine-checkable evidence trace (the abstract
/// state at the report point plus the claim derived from it), printed here
/// so a reviewer can audit the proof. Exits non-zero when any finding
/// survives, so the command slots directly into CI gates.
fn cmd_lint(args: &[String]) -> ExitCode {
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if files.is_empty() {
        eprintln!("error: missing <file> argument\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let engine = vulnman::analysis::checkers::SemanticEngine::new();
    let mut total = 0usize;
    for path in files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let program = match parse(&source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let scan = engine.analyze(&program);
        if scan.findings.is_empty() {
            println!("{path}: clean ({} solver iteration(s))", scan.stats.iterations);
        } else {
            println!("{path}: {} semantic finding(s)", scan.findings.len());
        }
        for f in &scan.findings {
            println!(
                "  line {:>3}  {}  in `{}` ({:?}) — {} [{}]",
                f.line(),
                f.cwe,
                f.function,
                f.confidence,
                f.message,
                f.detector,
            );
            if let Some(ev) = &f.evidence {
                println!("           evidence: {ev}");
            }
        }
        total += scan.findings.len();
    }
    if total > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_fix(args: &[String]) -> Result<(), String> {
    let (path, source) = read_source(args)?;
    let program = parse(&source).map_err(|e| format!("{path}: {e}"))?;
    let fixer = AutoFixer::new();
    // Which classes to try: an explicit --cwe id, or whatever the scan finds.
    let classes: Vec<Cwe> = match flag_value(args, "--cwe") {
        Some(id) => {
            let id: u32 = id.parse().map_err(|_| format!("invalid CWE id: {id}"))?;
            vec![Cwe::ALL
                .into_iter()
                .find(|c| c.id() == id)
                .ok_or_else(|| format!("unsupported CWE-{id}"))?]
        }
        None => {
            let mut found: Vec<Cwe> =
                RuleEngine::default_suite().scan(&program).iter().map(|f| f.cwe).collect();
            found.sort_by_key(|c| c.id());
            found.dedup();
            found
        }
    };
    if classes.is_empty() {
        println!("{path}: nothing to fix");
        return Ok(());
    }
    let mut current = source;
    let mut applied = Vec::new();
    for cwe in classes {
        if let Some(patched) = fixer.fix_source(&current, cwe) {
            current = patched;
            applied.push(cwe);
        } else {
            eprintln!("note: no unified mechanical fix for {cwe}; route to expert review");
        }
    }
    if applied.is_empty() {
        println!("{path}: no mechanical fixes applied");
    } else {
        eprintln!(
            "applied fixes: {}",
            applied.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(", ")
        );
        println!("{current}");
    }
    Ok(())
}

fn cmd_exec(args: &[String]) -> Result<(), String> {
    let (path, source) = read_source(args)?;
    let program = parse(&source).map_err(|e| format!("{path}: {e}"))?;
    let report = run_program(&program, &InterpConfig::default());
    println!(
        "{path}: ran {} entry point(s), {} crashed",
        report.entries_run.len(),
        report.crashed.len()
    );
    for e in &report.events {
        println!("  line {:>3}  {:?} in `{}`", e.span.line, e.kind, e.function);
    }
    if report.events.is_empty() {
        println!("  no runtime faults under the adversarial input model");
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let seed: u64 = parse_num(args, "--seed", 42)?;
    let count: usize = parse_num(args, "--count", 20)?;
    let fraction: f64 = parse_num(args, "--fraction", 0.5)?;
    let ds =
        DatasetBuilder::new(seed).vulnerable_count(count).vulnerable_fraction(fraction).build();
    match flag_value(args, "--out") {
        Some(dir) => {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
            for s in &ds {
                let label = if s.label { "vuln" } else { "benign" };
                let file = format!("{dir}/sample_{:04}_{label}.c", s.id);
                std::fs::write(&file, &s.source).map_err(|e| format!("write {file}: {e}"))?;
            }
            let index = serde_json::to_string_pretty(ds.samples())
                .map_err(|e| format!("serialize: {e}"))?;
            std::fs::write(format!("{dir}/index.json"), index)
                .map_err(|e| format!("write index: {e}"))?;
            println!("wrote {} samples to {dir}/ (sources + index.json)", ds.len());
        }
        None => {
            let json = serde_json::to_string_pretty(ds.samples()).map_err(|e| format!("{e}"))?;
            println!("{json}");
        }
    }
    Ok(())
}

fn cmd_workflow(args: &[String]) -> Result<(), String> {
    let seed: u64 = parse_num(args, "--seed", 42)?;
    let count: usize = parse_num(args, "--count", 30)?;
    let fraction: f64 = parse_num(args, "--fraction", 0.15)?;
    let jobs: usize = parse_num(args, "--jobs", 1)?;
    if jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    let ds =
        DatasetBuilder::new(seed).vulnerable_count(count).vulnerable_fraction(fraction).build();
    let mut registry = DetectorRegistry::new();
    registry.register(Box::new(RuleBasedDetector::standard()));
    let dedup = flag_present(args, "--dedup");
    let config = WorkflowConfig {
        jobs,
        cache: !flag_present(args, "--no-cache"),
        dedup,
        ..Default::default()
    };
    let fault_rate: f64 = parse_num(args, "--fault-rate", 0.0)?;
    if !(0.0..=1.0).contains(&fault_rate) {
        return Err("--fault-rate must be between 0 and 1".into());
    }
    let metrics = Registry::new();
    let engine = if fault_rate > 0.0 {
        let fault_config = FaultConfig {
            seed: parse_num(args, "--fault-seed", 0)?,
            rate: fault_rate,
            max_retries: parse_num(args, "--max-retries", 3)?,
            ..Default::default()
        };
        WorkflowEngine::with_fault_metrics(registry, config, fault_config, metrics.clone())
    } else {
        WorkflowEngine::with_metrics(registry, config, metrics.clone())
    };
    let report = engine.process(ds.samples());
    let m = report.detection_metrics();
    println!(
        "processed {} changes ({} vulnerable) on {jobs} worker{}",
        ds.len(),
        ds.vulnerable_count(),
        if jobs == 1 { "" } else { "s" }
    );
    println!(
        "detection: precision {:.3}, recall {:.3}, F1 {:.3}",
        m.precision(),
        m.recall(),
        m.f1()
    );
    println!(
        "repair: {} auto-fixed, {} AI-suggested, {} expert-fixed, {} escaped",
        report.auto_fixed, report.ai_fixed, report.expert_fixed, report.escaped
    );
    let cost = report.price(&CostParams::default());
    println!(
        "economics: {:.0} analyst minutes, net value ${:.0}",
        report.analyst_minutes, cost.net_value
    );
    let stats = engine.cache_stats();
    println!(
        "analysis cache: {} hits / {} misses ({:.0}% hit rate)",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
    if dedup {
        println!(
            "clone dedup: {} multi-member class(es), {} duplicate(s), \
             {} assessment(s) propagated from representatives",
            metrics.counter("clone.classes").get(),
            metrics.counter("clone.duplicates").get(),
            metrics.counter("clone.propagated").get()
        );
    }
    if let Some(path) = flag_value(args, "--report-out") {
        let json =
            serde_json::to_string_pretty(&report).map_err(|e| format!("serialize report: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        println!("report written to {path}");
    }
    if let Some(fc) = engine.fault_config() {
        let deg = &report.degradation;
        let injected = deg.transient + deg.timeout + deg.corrupt + deg.crash;
        println!(
            "resilience: {injected} fault(s) injected (seed {}, rate {:.0}%), \
             {} recovered after {} retries, {} call(s) exhausted",
            fc.seed,
            fc.rate * 100.0,
            deg.recovered,
            deg.retries,
            deg.exhausted
        );
        if deg.is_degraded() {
            println!(
                "degradation: {} assessment(s) lost across {} sample(s); quarantined: {}",
                deg.assessments_lost,
                deg.degraded_samples,
                if deg.quarantined.is_empty() { "none".into() } else { deg.quarantined.join(", ") }
            );
        } else {
            println!("degradation: none — every fault recovered within the retry budget");
        }
    }
    write_metrics(args, &engine.metrics_snapshot())?;
    Ok(())
}

fn cmd_oracle(args: &[String]) -> Result<(), String> {
    use vulnman::analysis::oracle::{
        DefectBaseline, DifferentialOracle, DisagreementKind, GoldenCase, GoldenManifest,
        OracleConfig, View,
    };

    let seed: u64 = parse_num(args, "--seed", 42)?;
    let count: usize = parse_num(args, "--count", 100)?;
    let fraction: f64 = parse_num(args, "--fraction", 0.2)?;
    let noise: f64 = parse_num(args, "--noise", 0.05)?;
    let jobs: usize = parse_num(args, "--jobs", 1)?;
    if jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    if !(0.0..=1.0).contains(&noise) {
        return Err("--noise must be between 0 and 1".into());
    }
    let ds = DatasetBuilder::new(seed)
        .vulnerable_count(count)
        .vulnerable_fraction(fraction)
        .label_noise(noise)
        .build();
    let metrics = Registry::new();
    let config = OracleConfig { jobs, cache: !flag_present(args, "--no-cache") };
    let oracle = DifferentialOracle::with_metrics(config, &metrics);
    let report = if flag_present(args, "--clones") {
        oracle.run_with_clones(ds.samples())
    } else {
        oracle.run(ds.samples())
    };
    print!("{}", report.summary_table());
    if flag_present(args, "--clones") {
        println!(
            "  clone consistency: {} inconsistenc{} across verified clone classes",
            report.taxonomy.clone_inconsistency,
            if report.taxonomy.clone_inconsistency == 1 { "y" } else { "ies" }
        );
    }
    // Label-noise provenance cross-check: every noise-corrupted sample must
    // surface as a label-noise artifact (the dataset knows which labels it
    // flipped; the oracle must rediscover all of them from the outside).
    let planted = ds.mislabeled_ids().len();
    println!(
        "  label-noise recall: {} artifact(s) / {} planted corruption(s)",
        report.taxonomy.label_noise_artifact, planted
    );

    if let Some(path) = flag_value(args, "--report-out") {
        let json =
            serde_json::to_string_pretty(&report).map_err(|e| format!("serialize report: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("report written to {path}");
    }

    if let Some(dir) = flag_value(args, "--shrink-golden") {
        let max_shrunk: usize = parse_num(args, "--max-shrunk", 12)?;
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
        let by_id: std::collections::HashMap<u64, &vulnman::synth::sample::Sample> =
            ds.samples().iter().map(|s| (s.id, s)).collect();
        let mut manifest = GoldenManifest::default();
        // One reproducer per (cwe, view, kind) signature keeps the corpus
        // small while still covering every distinct disagreement shape.
        let mut seen_signatures = std::collections::BTreeSet::new();
        for d in &report.disagreements {
            if manifest.cases.len() >= max_shrunk {
                break;
            }
            if d.kind == DisagreementKind::LabelNoiseArtifact || d.view == View::RecordedLabel {
                continue; // nothing in the source encodes a recorded label
            }
            if !seen_signatures.insert((d.cwe, d.view, d.kind)) {
                continue;
            }
            let Some(sample) = by_id.get(&d.sample_id) else { continue };
            let truth = if sample.label { sample.cwe } else { None };
            let Some(outcome) = oracle.shrink(&sample.source, d, truth, sample.is_mislabeled())
            else {
                continue;
            };
            let cwe_tag = d.cwe.map_or_else(|| "parse".to_string(), |c| format!("cwe{}", c.id()));
            let file = format!("case_{:04}_{}_{}.c", d.sample_id, cwe_tag, d.kind.label());
            std::fs::write(format!("{dir}/{file}"), &outcome.source)
                .map_err(|e| format!("write {dir}/{file}: {e}"))?;
            eprintln!(
                "shrunk sample {} ({} -> {} bytes, {} step(s), {} attempt(s)) -> {file}",
                d.sample_id,
                sample.source.len(),
                outcome.source.len(),
                outcome.steps,
                outcome.attempts
            );
            manifest.cases.push(GoldenCase {
                file,
                sample_id: d.sample_id,
                cwe: d.cwe,
                view: d.view,
                kind: d.kind,
                truth,
                mislabeled: sample.is_mislabeled(),
                detail: d.detail.clone(),
            });
        }
        let json = serde_json::to_string_pretty(&manifest)
            .map_err(|e| format!("serialize manifest: {e}"))?;
        std::fs::write(format!("{dir}/manifest.json"), json)
            .map_err(|e| format!("write {dir}/manifest.json: {e}"))?;
        println!("golden corpus: {} reproducer(s) in {dir}/", manifest.cases.len());
    }

    if let Some(path) = flag_value(args, "--write-baseline") {
        let baseline = DefectBaseline { analyzer_defects: report.analyzer_defects() };
        let json = serde_json::to_string_pretty(&baseline)
            .map_err(|e| format!("serialize baseline: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("baseline written to {path}");
    }

    write_metrics(args, &metrics.snapshot())?;

    if let Some(path) = flag_value(args, "--baseline") {
        let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let baseline: DefectBaseline =
            serde_json::from_str(&json).map_err(|e| format!("parse {path}: {e}"))?;
        let found = report.analyzer_defects();
        if found > baseline.analyzer_defects {
            return Err(format!(
                "analyzer-defect regression: {found} defect(s) found, \
                 baseline allows {} — triage the new defects or consciously \
                 raise the baseline",
                baseline.analyzer_defects
            ));
        }
        println!(
            "  baseline check: {found} analyzer defect(s) <= {} allowed",
            baseline.analyzer_defects
        );
    }
    Ok(())
}

/// Shared `--metrics-out` / `--metrics-prom` / `--metrics-summary` handling.
fn write_metrics(args: &[String], snapshot: &vulnman::obs::Snapshot) -> Result<(), String> {
    if let Some(path) = flag_value(args, "--metrics-out") {
        let json = serde_json::to_string_pretty(snapshot)
            .map_err(|e| format!("serialize metrics: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("metrics written to {path}");
    }
    if let Some(path) = flag_value(args, "--metrics-prom") {
        std::fs::write(path, snapshot.to_prometheus()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("prometheus metrics written to {path}");
    }
    if flag_present(args, "--metrics-summary") {
        print!("{}", snapshot.render_summary());
    }
    Ok(())
}

/// `vulnman serve` — the concurrent analysis service. Binds, prints the
/// resolved address, and runs until killed.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use vulnman::serve::{spawn, ServeConfig, MAX_REQUEST_BYTES};

    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7433");
    let workers: usize = parse_num(args, "--workers", 4)?;
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let queue: usize = parse_num(args, "--queue", 64)?;
    let max_request_bytes: usize = parse_num(args, "--max-request-bytes", MAX_REQUEST_BYTES)?;
    let fault_rate: f64 = parse_num(args, "--fault-rate", 0.0)?;
    if !(0.0..=1.0).contains(&fault_rate) {
        return Err("--fault-rate must be between 0 and 1".into());
    }
    let fault = FaultConfig {
        seed: parse_num(args, "--fault-seed", 0)?,
        rate: fault_rate,
        max_retries: parse_num(args, "--max-retries", 3)?,
        ..Default::default()
    };
    let metrics = Registry::new();
    let config = ServeConfig { workers, queue, max_request_bytes, fault };
    let server = spawn(addr, config, &metrics).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!(
        "vulnman serve listening on {} ({workers} worker(s), queue bound {queue})",
        server.addr()
    );
    loop {
        std::thread::park();
    }
}

/// `vulnman clones` — groups mini-C files into verified near-clone classes
/// using the MinHash/LSH index (token shingles with normalized identifiers,
/// banded LSH candidates, exact-Jaccard verification). Singleton files are
/// listed once at the end; exit status is success either way, since clone
/// structure is information, not a defect.
fn cmd_clones(args: &[String]) -> Result<(), String> {
    use vulnman::lang::clone::{CloneConfig, CloneIndex};

    // Positional file arguments, skipping each value-taking flag's value so
    // `clones a.c b.c --threshold 0.7` does not treat `0.7` as a path.
    let value_flags = ["--threshold", "--shingle-k", "--jobs"];
    let mut files: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if value_flags.contains(&a.as_str()) {
            iter.next();
        } else if !a.starts_with("--") {
            files.push(a);
        }
    }
    if files.is_empty() {
        return Err(format!("missing <file> argument\n{USAGE}"));
    }
    let threshold: f64 = parse_num(args, "--threshold", CloneConfig::default().threshold)?;
    if !(0.0..=1.0).contains(&threshold) {
        return Err("--threshold must be between 0 and 1".into());
    }
    let shingle_k: usize = parse_num(args, "--shingle-k", CloneConfig::default().shingle_k)?;
    if shingle_k == 0 {
        return Err("--shingle-k must be at least 1".into());
    }
    let jobs: usize = parse_num(args, "--jobs", 1)?;
    if jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    let config = CloneConfig { threshold, shingle_k, jobs, ..Default::default() };

    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        sources.push(source);
    }
    let entries: Vec<(u64, &str)> =
        sources.iter().enumerate().map(|(i, s)| (i as u64, s.as_str())).collect();
    let index = CloneIndex::build(&entries, config);
    // Files the index skipped failed to lex; report them explicitly rather
    // than silently listing them as singletons.
    let indexed: std::collections::HashSet<u64> = index.entries().iter().map(|e| e.id).collect();
    let mut classes: Vec<Vec<usize>> = index
        .classes()
        .into_iter()
        .map(|c| c.iter().map(|&e| index.entries()[e as usize].id as usize).collect())
        .collect();
    classes.sort_by_key(|c| c[0]);

    let multi: Vec<&Vec<usize>> = classes.iter().filter(|c| c.len() > 1).collect();
    let duplicates: usize = multi.iter().map(|c| c.len() - 1).sum();
    println!(
        "{} file(s): {} clone class(es), {} near-duplicate(s) (threshold {:.2})",
        files.len(),
        multi.len(),
        duplicates,
        threshold
    );
    for (n, class) in multi.iter().enumerate() {
        println!("class {}:", n + 1);
        for &i in class.iter() {
            println!("  {}", files[i]);
        }
    }
    let singletons: Vec<&&String> =
        classes.iter().filter(|c| c.len() == 1).map(|c| &files[c[0]]).collect();
    if !singletons.is_empty() {
        println!("unique:");
        for path in singletons {
            println!("  {path}");
        }
    }
    for (i, path) in files.iter().enumerate() {
        if !indexed.contains(&(i as u64)) {
            println!("skipped (does not lex): {path}");
        }
    }
    Ok(())
}

/// `vulnman graph` — builds the whole-corpus call graph over a generated
/// multi-file corpus (cross-file bridge calls enabled, so sibling units of
/// a project genuinely call into each other), then prints the graph's shape
/// and the blast-radius triage leaders. Output is byte-identical at any
/// `--jobs` and with the cache on or off.
fn cmd_graph(args: &[String]) -> Result<(), String> {
    use vulnman::analysis::corpusgraph::register_graph_instruments;
    use vulnman::analysis::CorpusGraph;
    use vulnman::lang::AnalysisCache;

    let seed: u64 = parse_num(args, "--seed", 42)?;
    let count: usize = parse_num(args, "--count", 30)?;
    let fraction: f64 = parse_num(args, "--fraction", 0.25)?;
    let jobs: usize = parse_num(args, "--jobs", 1)?;
    if jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    let top: usize = parse_num(args, "--top", 10)?;

    let ds = DatasetBuilder::new(seed)
        .vulnerable_count(count)
        .vulnerable_fraction(fraction)
        .cross_file_links(true)
        .build();
    let metrics = Registry::new();
    register_graph_instruments(&metrics);
    let cache = if flag_present(args, "--no-cache") {
        AnalysisCache::disabled()
    } else {
        AnalysisCache::with_metrics(&metrics)
    };
    let graph = CorpusGraph::from_samples(ds.samples(), &cache, jobs, &metrics)
        .map_err(|e| format!("corpus parse error: {e}"))?;
    let report = graph.report();

    println!(
        "corpus graph over {} unit(s): {} function(s), {} call edge(s) \
         ({} cross-unit), {} external sink/source(s)",
        ds.len(),
        report.nodes,
        report.edges,
        report.cross_unit_edges,
        report.externals
    );
    println!(
        "structure: {} strongly connected component(s), {} communit{}",
        report.sccs,
        report.communities,
        if report.communities == 1 { "y" } else { "ies" }
    );
    let ranked = graph.blast_ranked();
    if !ranked.is_empty() {
        println!("blast-radius leaders:");
        for (name, blast) in ranked.iter().take(top) {
            let f = &report.functions[name];
            println!(
                "  [{blast:>5.3}] {name}  ({:?}, {} downstream, {} upstream, community {})",
                f.surface, f.downstream, f.upstream, f.community
            );
        }
    }
    if let Some(path) = flag_value(args, "--report-out") {
        let json =
            serde_json::to_string_pretty(&report).map_err(|e| format!("serialize report: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("report written to {path}");
    }
    write_metrics(args, &metrics.snapshot())?;
    Ok(())
}

/// `vulnman audit` — computes the CWE × detector-family coverage/precision
/// matrix over a seeded per-class corpus and (with `--check`) gates it
/// against the committed baseline, so a detector silently losing a class —
/// or starting to flood false positives — fails CI instead of shipping.
/// The matrix is byte-identical at any `--jobs`.
fn cmd_audit(args: &[String]) -> Result<(), String> {
    use vulnman::analysis::{register_audit_instruments, AuditConfig, AuditEngine, AuditReport};

    let defaults = AuditConfig::default();
    let seed: u64 = parse_num(args, "--seed", defaults.seed)?;
    let samples: usize = parse_num(args, "--samples", defaults.samples_per_class)?;
    if samples == 0 {
        return Err("--samples must be at least 1".into());
    }
    let jobs: usize = parse_num(args, "--jobs", 1)?;
    if jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    let config = AuditConfig { seed, samples_per_class: samples, jobs };
    let metrics = Registry::new();
    register_audit_instruments(&metrics);
    let mut engine = AuditEngine::new(config);
    if !flag_present(args, "--no-ml") {
        engine = engine.with_ml(vulnman::core::audit_ml_verdict(seed));
    }
    let report = engine.run_with_metrics(&metrics);

    print!("{}", report.to_markdown());
    if let Some(path) = flag_value(args, "--out") {
        let json =
            serde_json::to_string_pretty(&report).map_err(|e| format!("serialize matrix: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("matrix written to {path}");
    }
    if let Some(path) = flag_value(args, "--report-out") {
        std::fs::write(path, report.to_markdown()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("markdown report written to {path}");
    }
    write_metrics(args, &metrics.snapshot())?;

    let baseline_path = flag_value(args, "--baseline").unwrap_or("tests/audit_baseline.json");
    if flag_present(args, "--write-baseline") {
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| format!("serialize baseline: {e}"))?;
        std::fs::write(baseline_path, json + "\n")
            .map_err(|e| format!("write {baseline_path}: {e}"))?;
        eprintln!("baseline written to {baseline_path}");
    }
    if flag_present(args, "--check") {
        let json = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("cannot read {baseline_path}: {e}"))?;
        let baseline: AuditReport =
            serde_json::from_str(&json).map_err(|e| format!("parse {baseline_path}: {e}"))?;
        let violations = report.check_against(&baseline);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("audit violation: {v}");
            }
            return Err(format!(
                "{} audit violation(s) against {baseline_path} — fix the detector or \
                 consciously regenerate the baseline with --write-baseline",
                violations.len()
            ));
        }
        println!(
            "baseline check: {} of {} cells covered, no regressions against {baseline_path}",
            report.covered_count(),
            report.cell_count()
        );
    }
    Ok(())
}

fn cmd_sft(args: &[String]) -> Result<(), String> {
    let seed: u64 = parse_num(args, "--seed", 42)?;
    let count: usize = parse_num(args, "--count", 10)?;
    let ds = DatasetBuilder::new(seed).vulnerable_count(count).build();
    let mut registry = DetectorRegistry::new();
    registry.register(Box::new(RuleBasedDetector::standard()));
    let engine = WorkflowEngine::new(registry, WorkflowConfig::default());
    let report = engine.process(ds.samples());
    let sft = harvest(ds.samples(), &report);
    print!("{}", sft.to_jsonl().map_err(|e| format!("{e}"))?);
    Ok(())
}
